#include "suite/suite.h"

#include "ir/builder.h"

namespace parserhawk::suite {

ParserSpec parse_ethernet() {
  SpecBuilder b("parse_ethernet");
  b.field("eth_dst", 48).field("eth_src", 48).field("eth_type", 16);
  b.field("ipv4_hdr", 32).field("ipv6_hdr", 32);
  b.state("start")
      .extract("eth_dst")
      .extract("eth_src")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x0800, "parse_ipv4")
      .when_exact(0x86dd, "parse_ipv6")
      .otherwise("accept");
  b.state("parse_ipv4").extract("ipv4_hdr").otherwise("accept");
  b.state("parse_ipv6").extract("ipv6_hdr").otherwise("accept");
  return b.build().value();
}

ParserSpec parse_icmp() {
  SpecBuilder b("parse_icmp");
  b.field("eth_type", 16).field("ip_ver", 8).field("ip_proto", 8);
  b.field("icmp_type", 8).field("icmp_code", 8).field("tcp_ports", 32);
  b.state("start")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x0800, "parse_ipv4")
      .otherwise("accept");
  b.state("parse_ipv4")
      .extract("ip_ver")
      .extract("ip_proto")
      .select({b.whole("ip_proto")})
      .when_exact(1, "parse_icmp")
      .when_exact(6, "parse_tcp")
      .otherwise("accept");
  b.state("parse_icmp").extract("icmp_type").extract("icmp_code").otherwise("accept");
  b.state("parse_tcp").extract("tcp_ports").otherwise("accept");
  return b.build().value();
}

ParserSpec parse_mpls() {
  SpecBuilder b("parse_mpls");
  // 32-bit MPLS word: label(20) tc(3) bos(1) ttl(8); bit 23 is BOS.
  b.field("eth_type", 16).field("mpls_word", 32).field("payload", 32);
  b.state("start")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x8847, "parse_label")
      .otherwise("accept");
  b.state("parse_label")
      .extract("mpls_word")
      .select({b.slice("mpls_word", 23, 1)})
      .when_exact(0, "parse_label")
      .otherwise("parse_payload");
  b.state("parse_payload").extract("payload").otherwise("accept");
  return b.build().value();
}

ParserSpec parse_mpls_unrolled(int depth) {
  SpecBuilder b("parse_mpls_unrolled");
  b.field("eth_type", 16).field("mpls_word", 32).field("payload", 32);
  b.state("start")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x8847, "label0")
      .otherwise("accept");
  for (int i = 0; i < depth; ++i) {
    std::string name = "label" + std::to_string(i);
    // The last copy keeps looping (partial unroll with a loop tail).
    std::string next = i + 1 < depth ? "label" + std::to_string(i + 1) : name;
    b.state(name)
        .extract("mpls_word")
        .select({b.slice("mpls_word", 23, 1)})
        .when_exact(0, next)
        .otherwise("parse_payload");
  }
  b.state("parse_payload").extract("payload").otherwise("accept");
  return b.build().value();
}

ParserSpec large_tran_key() {
  SpecBuilder b("large_tran_key");
  b.field("tkey", 48).field("a", 16).field("c", 16);
  b.state("start")
      .extract("tkey")
      .select({b.whole("tkey")})
      .when_exact(0x08002a104e22ull, "na")
      .when_exact(0x08002a104e23ull, "na")
      .when_exact(0x86dd2a104e22ull, "nc")
      .otherwise("accept");
  b.state("na").extract("a").otherwise("accept");
  b.state("nc").extract("c").otherwise("accept");
  return b.build().value();
}

ParserSpec multi_key_same_field() {
  SpecBuilder b("multi_key_same_field");
  b.field("hdr", 16).field("x", 8).field("y", 8);
  b.state("start")
      .extract("hdr")
      .select({b.slice("hdr", 0, 4)})
      .when_exact(0xA, "second")
      .otherwise("accept");
  b.state("second")
      .select({b.slice("hdr", 8, 4)})
      .when_exact(0x5, "px")
      .when_exact(0x6, "py")
      .otherwise("accept");
  b.state("px").extract("x").otherwise("accept");
  b.state("py").extract("y").otherwise("accept");
  return b.build().value();
}

ParserSpec multi_keys_diff_fields() {
  SpecBuilder b("multi_keys_diff_fields");
  b.field("outer", 8).field("inner", 8).field("deep", 16);
  b.state("start")
      .extract("outer")
      .select({b.whole("outer")})
      .when_exact(0x11, "mid")
      .when_exact(0x22, "mid")
      .otherwise("accept");
  b.state("mid")
      .extract("inner")
      .select({b.whole("outer"), b.whole("inner")})
      .when_exact(0x1133, "deepst")
      .when_exact(0x2233, "deepst")
      .otherwise("accept");
  b.state("deepst").extract("deep").otherwise("accept");
  return b.build().value();
}

ParserSpec pure_extraction_states() {
  SpecBuilder b("pure_extraction_states");
  for (int i = 0; i < 6; ++i) b.field("h" + std::to_string(i), 48);
  for (int i = 0; i < 6; ++i) {
    std::string name = i == 0 ? "start" : "s" + std::to_string(i);
    std::string next = i + 1 < 6 ? "s" + std::to_string(i + 1) : "accept";
    b.state(name).extract("h" + std::to_string(i)).otherwise(next);
  }
  return b.build().value();
}

ParserSpec sai_v1() {
  SpecBuilder b("sai_v1");
  b.field("eth_type", 16).field("vlan_tci", 16).field("vlan_type", 16);
  b.field("ip_proto", 8).field("l4", 32).field("icmp", 16);
  b.state("start")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x8100, "parse_vlan")
      .when_exact(0x0800, "parse_ip")
      .otherwise("accept");
  b.state("parse_vlan")
      .extract("vlan_tci")
      .extract("vlan_type")
      .select({b.whole("vlan_type")})
      .when_exact(0x0800, "parse_ip")
      .otherwise("accept");
  b.state("parse_ip")
      .extract("ip_proto")
      .select({b.whole("ip_proto")})
      .when_exact(6, "parse_l4")
      .when_exact(17, "parse_l4")
      .when_exact(1, "parse_icmp")
      .otherwise("accept");
  b.state("parse_l4").extract("l4").otherwise("accept");
  b.state("parse_icmp").extract("icmp").otherwise("accept");
  return b.build().value();
}

ParserSpec sai_v2() {
  SpecBuilder b("sai_v2");
  b.field("eth_type", 16).field("vlan_tci", 16).field("vlan_type", 16);
  b.field("ip_proto", 8).field("gre_proto", 16).field("inner_type", 16);
  b.field("tcp", 32).field("udp", 32).field("icmp", 16).field("inner_ip", 32);
  b.state("start")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x8100, "parse_vlan")
      .when_exact(0x0800, "parse_ip")
      .when_exact(0x86dd, "parse_ip")
      .otherwise("accept");
  b.state("parse_vlan")
      .extract("vlan_tci")
      .extract("vlan_type")
      .select({b.whole("vlan_type")})
      .when_exact(0x0800, "parse_ip")
      .when_exact(0x86dd, "parse_ip")
      .otherwise("accept");
  b.state("parse_ip")
      .extract("ip_proto")
      .select({b.whole("ip_proto")})
      .when_exact(6, "parse_tcp")
      .when_exact(17, "parse_udp")
      .when_exact(1, "parse_icmp")
      .when_exact(47, "parse_gre")
      .otherwise("accept");
  b.state("parse_tcp").extract("tcp").otherwise("accept");
  b.state("parse_udp").extract("udp").otherwise("accept");
  b.state("parse_icmp").extract("icmp").otherwise("accept");
  b.state("parse_gre")
      .extract("gre_proto")
      .select({b.whole("gre_proto")})
      .when_exact(0x6558, "parse_inner_eth")
      .otherwise("accept");
  b.state("parse_inner_eth")
      .extract("inner_type")
      .select({b.whole("inner_type")})
      .when_exact(0x0800, "parse_inner_ip")
      .otherwise("accept");
  b.state("parse_inner_ip").extract("inner_ip").otherwise("accept");
  return b.build().value();
}

ParserSpec dash_v2() {
  SpecBuilder b("dash_v2");
  // A long chain of narrow dispatches (1-bit keys), the DASH shape: many
  // states, tiny search space.
  for (int i = 0; i < 8; ++i) b.field("t" + std::to_string(i), 8);
  b.field("tail", 16);
  for (int i = 0; i < 8; ++i) {
    std::string name = i == 0 ? "start" : "d" + std::to_string(i);
    std::string next = i + 1 < 8 ? "d" + std::to_string(i + 1) : "fin";
    b.state(name)
        .extract("t" + std::to_string(i))
        .select({b.slice("t" + std::to_string(i), 0, 1)})
        .when_exact(0, next)
        .otherwise("accept");
  }
  b.state("fin").extract("tail").otherwise("accept");
  return b.build().value();
}

ParserSpec finance_origin() {
  SpecBuilder b("finance_origin");
  b.field("eth_type", 16).field("vni", 24).field("origin_tag", 16);
  b.field("exch_seq", 32).field("internal_meta", 16).field("premium_meta", 16);
  b.state("start")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x6558, "parse_origin")  // tunneled traffic carries an origin tag
      .otherwise("accept");
  b.state("parse_origin")
      .extract("vni")
      .extract("origin_tag")
      .select({b.whole("origin_tag")})
      .when(0x1000, 0xF000, "parse_exchange")  // 0x1***: exchange feeds (CME-style)
      .when(0x2000, 0xF000, "parse_internal")  // 0x2***: internal services
      .when_exact(0x3001, "parse_premium")     // premium customers, exact tag
      .when_exact(0x3002, "parse_premium")
      .otherwise("accept");
  b.state("parse_exchange").extract("exch_seq").otherwise("accept");
  b.state("parse_internal").extract("internal_meta").otherwise("accept");
  b.state("parse_premium").extract("premium_meta").otherwise("accept");
  return b.build().value();
}

ParserSpec ipv4_options() {
  SpecBuilder b("ipv4_options");
  b.field("ihl", 4).field("proto", 8);
  b.varbit_field("options", 40);
  b.field("l4", 16);
  b.state("start")
      .extract("ihl")
      .extract("proto")
      // options length: (ihl - 5) * 8 bits in this reduced header model
      .extract_var("options", "ihl", 8, -40)
      .select({b.whole("proto")})
      .when_exact(6, "parse_l4")
      .otherwise("accept");
  b.state("parse_l4").extract("l4").otherwise("accept");
  return b.build().value();
}

ParserSpec figure3_program() {
  SpecBuilder b("figure3");
  b.field("tranKey", 4).field("n1", 4).field("n2", 4).field("n3", 4);
  b.state("start")
      .extract("tranKey")
      .select({b.whole("tranKey")})
      .when_exact(15, "N1")
      .when_exact(11, "N1")
      .when_exact(7, "N1")
      .when_exact(3, "N1")
      .when_exact(14, "N2")
      .when_exact(2, "N3")
      .otherwise("accept");
  b.state("N1").extract("n1").otherwise("accept");
  b.state("N2").extract("n2").otherwise("accept");
  b.state("N3").extract("n3").otherwise("accept");
  return b.build().value();
}

ParserSpec me1_entry_merging() {
  // {1..7} -> N1, default accept. The optimal TCAM program shadows key 0
  // with a higher-priority accept entry and covers N1 with the single cube
  // 0***, something no rule-*merging* algorithm can produce: it requires
  // entries whose match sets overlap, resolved by priority. The synthesis
  // search finds it; DPParserGen's exact cover needs three cubes.
  SpecBuilder b("me1_entry_merging");
  b.field("k", 4).field("n1", 4);
  auto st = b.state("start").extract("k").select({b.whole("k")});
  for (int v = 1; v <= 7; ++v) st.when_exact(static_cast<std::uint64_t>(v), "N1");
  st.otherwise("accept");
  b.state("N1").extract("n1").otherwise("accept");
  return b.build().value();
}

ParserSpec me2_key_splitting() {
  SpecBuilder b("me2_key_splitting");
  b.field("k", 16).field("p", 8);
  b.state("start")
      .extract("k")
      .select({b.whole("k")})
      .when_exact(0x0800, "pay")
      .when_exact(0x0801, "pay")
      .when_exact(0x86dd, "pay")
      .otherwise("accept");
  b.state("pay").extract("p").otherwise("accept");
  return b.build().value();
}

ParserSpec me3_redundant_entries() {
  SpecBuilder b("me3_redundant_entries");
  b.field("k", 8).field("p", 8);
  auto st = b.state("start").extract("k").select({b.whole("k")});
  // Ten entries that all lead to the same place; one wildcard suffices.
  for (int v = 0; v < 10; ++v) st.when_exact(static_cast<std::uint64_t>(v), "pay");
  st.otherwise("pay");
  b.state("pay").extract("p").otherwise("accept");
  return b.build().value();
}

std::vector<Benchmark> base_suite() {
  return {
      {"Parse Ethernet", parse_ethernet(), false},
      {"Parse icmp", parse_icmp(), false},
      {"Parse MPLS", parse_mpls(), true},
      {"Large tran key", large_tran_key(), false},
      {"Multi-key (same pkt field)", multi_key_same_field(), false},
      {"Multi-keys (diff pkt fields)", multi_keys_diff_fields(), false},
      {"Pure Extraction states", pure_extraction_states(), false},
      {"Sai V1", sai_v1(), false},
      {"Sai V2", sai_v2(), false},
      {"Dash V2", dash_v2(), false},
      {"Finance origin", finance_origin(), false},
      {"IPv4 options (varbit)", ipv4_options(), false},
  };
}

}  // namespace parserhawk::suite

namespace parserhawk::suite::subsets {

ParserSpec switch_p4_style() {
  SpecBuilder b("switch_p4_style");
  b.field("eth_type", 16);
  b.field("vlan0_tci", 16).field("vlan0_type", 16);
  b.field("vlan1_tci", 16).field("vlan1_type", 16);
  b.field("ip4_ihl", 8).field("ip4_proto", 8);
  b.field("ip6_nexthdr", 8);
  b.field("mpls_word", 32);
  b.field("gre_proto", 16);
  b.field("udp_dport", 16).field("tcp_hdr", 32);
  b.field("icmp_hdr", 16).field("vxlan_vni", 24);
  b.field("inner_eth", 16).field("payload", 16);

  b.state("start")
      .extract("eth_type")
      .select({b.whole("eth_type")})
      .when_exact(0x8100, "parse_vlan0")
      .when_exact(0x0800, "parse_ipv4")
      .when_exact(0x86dd, "parse_ipv6")
      .when_exact(0x8847, "parse_mpls")
      .otherwise("accept");
  b.state("parse_vlan0")
      .extract("vlan0_tci")
      .extract("vlan0_type")
      .select({b.whole("vlan0_type")})
      .when_exact(0x8100, "parse_vlan1")
      .when_exact(0x0800, "parse_ipv4")
      .when_exact(0x86dd, "parse_ipv6")
      .otherwise("accept");
  b.state("parse_vlan1")
      .extract("vlan1_tci")
      .extract("vlan1_type")
      .select({b.whole("vlan1_type")})
      .when_exact(0x0800, "parse_ipv4")
      .when_exact(0x86dd, "parse_ipv6")
      .otherwise("accept");
  b.state("parse_ipv4")
      .extract("ip4_ihl")
      .extract("ip4_proto")
      .select({b.whole("ip4_proto")})
      .when_exact(6, "parse_tcp")
      .when_exact(17, "parse_udp")
      .when_exact(1, "parse_icmp")
      .when_exact(47, "parse_gre")
      .otherwise("accept");
  b.state("parse_ipv6")
      .extract("ip6_nexthdr")
      .select({b.whole("ip6_nexthdr")})
      .when_exact(6, "parse_tcp")
      .when_exact(17, "parse_udp")
      .when_exact(58, "parse_icmp")
      .otherwise("accept");
  b.state("parse_mpls")
      .extract("mpls_word")
      .select({b.slice("mpls_word", 23, 1)})
      .when_exact(0, "parse_mpls")
      .otherwise("parse_payload");
  b.state("parse_gre")
      .extract("gre_proto")
      .select({b.whole("gre_proto")})
      .when_exact(0x6558, "parse_inner_eth")
      .otherwise("accept");
  b.state("parse_udp")
      .extract("udp_dport")
      .select({b.whole("udp_dport")})
      .when_exact(4789, "parse_vxlan")
      .otherwise("accept");
  b.state("parse_tcp").extract("tcp_hdr").otherwise("accept");
  b.state("parse_icmp").extract("icmp_hdr").otherwise("accept");
  b.state("parse_vxlan")
      .extract("vxlan_vni")
      .otherwise("parse_inner_eth");
  b.state("parse_inner_eth")
      .extract("inner_eth")
      .select({b.whole("inner_eth")})
      .when_exact(0x0800, "parse_payload")
      .otherwise("accept");
  b.state("parse_payload").extract("payload").otherwise("accept");
  return b.build().value();
}

ParserSpec random_subset(const ParserSpec& population, Rng& rng, int k) {
  const int n = static_cast<int>(population.states.size());
  k = std::max(1, std::min(k, n));

  // Random BFS from a random root over transition edges.
  std::vector<int> chosen;
  std::vector<bool> in(static_cast<std::size_t>(n), false);
  std::vector<int> frontier{static_cast<int>(rng.below(static_cast<std::uint64_t>(n)))};
  in[static_cast<std::size_t>(frontier[0])] = true;
  chosen.push_back(frontier[0]);
  while (!frontier.empty() && static_cast<int>(chosen.size()) < k) {
    std::size_t pick = static_cast<std::size_t>(rng.below(frontier.size()));
    int s = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    for (const auto& r : population.states[static_cast<std::size_t>(s)].rules) {
      if (!is_real_state(r.next) || in[static_cast<std::size_t>(r.next)]) continue;
      if (static_cast<int>(chosen.size()) >= k) break;
      in[static_cast<std::size_t>(r.next)] = true;
      chosen.push_back(r.next);
      frontier.push_back(r.next);
    }
  }

  // Rebuild: keep chosen states (root first); exits leave to accept.
  std::vector<int> remap(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < chosen.size(); ++i)
    remap[static_cast<std::size_t>(chosen[i])] = static_cast<int>(i);
  ParserSpec out;
  out.name = population.name + "_subset" + std::to_string(chosen.size());
  out.fields = population.fields;
  for (int s : chosen) {
    State st = population.states[static_cast<std::size_t>(s)];
    for (auto& r : st.rules) {
      if (!is_real_state(r.next)) continue;
      int mapped = remap[static_cast<std::size_t>(r.next)];
      r.next = mapped >= 0 ? mapped : kAccept;
    }
    out.states.push_back(std::move(st));
  }
  out.start = 0;
  return out;
}

}  // namespace parserhawk::suite::subsets
