# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_tcam[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_postopt[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite[1]_include.cmake")
include("/root/repo/build/tests/test_suite[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_property_end2end[1]_include.cmake")
include("/root/repo/build/tests/test_ablation[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
