
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_suite.cpp" "tests/CMakeFiles/test_suite.dir/test_suite.cpp.o" "gcc" "tests/CMakeFiles/test_suite.dir/test_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/ph_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ph_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/ph_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ph_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ph_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
