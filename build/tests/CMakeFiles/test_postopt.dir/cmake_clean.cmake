file(REMOVE_RECURSE
  "CMakeFiles/test_postopt.dir/test_postopt.cpp.o"
  "CMakeFiles/test_postopt.dir/test_postopt.cpp.o.d"
  "test_postopt"
  "test_postopt.pdb"
  "test_postopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
