# Empty compiler generated dependencies file for test_postopt.
# This may be replaced when dependencies are built.
