file(REMOVE_RECURSE
  "CMakeFiles/ph_tcam.dir/tcam.cpp.o"
  "CMakeFiles/ph_tcam.dir/tcam.cpp.o.d"
  "libph_tcam.a"
  "libph_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
