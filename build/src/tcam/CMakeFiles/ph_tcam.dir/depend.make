# Empty dependencies file for ph_tcam.
# This may be replaced when dependencies are built.
