file(REMOVE_RECURSE
  "libph_tcam.a"
)
