file(REMOVE_RECURSE
  "libph_hw.a"
)
