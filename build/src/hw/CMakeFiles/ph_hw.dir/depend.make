# Empty dependencies file for ph_hw.
# This may be replaced when dependencies are built.
