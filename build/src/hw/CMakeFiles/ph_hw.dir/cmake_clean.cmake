file(REMOVE_RECURSE
  "CMakeFiles/ph_hw.dir/profile.cpp.o"
  "CMakeFiles/ph_hw.dir/profile.cpp.o.d"
  "libph_hw.a"
  "libph_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
