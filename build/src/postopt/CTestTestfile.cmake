# CMake generated Testfile for 
# Source directory: /root/repo/src/postopt
# Build directory: /root/repo/build/src/postopt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
