# Empty compiler generated dependencies file for ph_postopt.
# This may be replaced when dependencies are built.
