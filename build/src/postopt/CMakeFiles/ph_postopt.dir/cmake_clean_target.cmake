file(REMOVE_RECURSE
  "libph_postopt.a"
)
