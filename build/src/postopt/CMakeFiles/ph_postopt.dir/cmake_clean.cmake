file(REMOVE_RECURSE
  "CMakeFiles/ph_postopt.dir/postopt.cpp.o"
  "CMakeFiles/ph_postopt.dir/postopt.cpp.o.d"
  "libph_postopt.a"
  "libph_postopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_postopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
