file(REMOVE_RECURSE
  "CMakeFiles/ph_support.dir/bitvec.cpp.o"
  "CMakeFiles/ph_support.dir/bitvec.cpp.o.d"
  "CMakeFiles/ph_support.dir/table.cpp.o"
  "CMakeFiles/ph_support.dir/table.cpp.o.d"
  "libph_support.a"
  "libph_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
