# Empty dependencies file for ph_support.
# This may be replaced when dependencies are built.
