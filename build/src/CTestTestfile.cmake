# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("lang")
subdirs("analysis")
subdirs("hw")
subdirs("tcam")
subdirs("sim")
subdirs("postopt")
subdirs("synth")
subdirs("backend")
subdirs("baseline")
subdirs("rewrite")
subdirs("suite")
