file(REMOVE_RECURSE
  "libph_synth.a"
)
