# Empty dependencies file for ph_synth.
# This may be replaced when dependencies are built.
