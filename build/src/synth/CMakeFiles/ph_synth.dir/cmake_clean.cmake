file(REMOVE_RECURSE
  "CMakeFiles/ph_synth.dir/chain_synth.cpp.o"
  "CMakeFiles/ph_synth.dir/chain_synth.cpp.o.d"
  "CMakeFiles/ph_synth.dir/compiler.cpp.o"
  "CMakeFiles/ph_synth.dir/compiler.cpp.o.d"
  "CMakeFiles/ph_synth.dir/global_synth.cpp.o"
  "CMakeFiles/ph_synth.dir/global_synth.cpp.o.d"
  "CMakeFiles/ph_synth.dir/normalize.cpp.o"
  "CMakeFiles/ph_synth.dir/normalize.cpp.o.d"
  "CMakeFiles/ph_synth.dir/verify.cpp.o"
  "CMakeFiles/ph_synth.dir/verify.cpp.o.d"
  "libph_synth.a"
  "libph_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
