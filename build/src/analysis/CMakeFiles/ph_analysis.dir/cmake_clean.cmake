file(REMOVE_RECURSE
  "CMakeFiles/ph_analysis.dir/analysis.cpp.o"
  "CMakeFiles/ph_analysis.dir/analysis.cpp.o.d"
  "libph_analysis.a"
  "libph_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
