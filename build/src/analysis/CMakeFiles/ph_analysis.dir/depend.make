# Empty dependencies file for ph_analysis.
# This may be replaced when dependencies are built.
