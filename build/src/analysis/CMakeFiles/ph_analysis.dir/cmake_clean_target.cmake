file(REMOVE_RECURSE
  "libph_analysis.a"
)
