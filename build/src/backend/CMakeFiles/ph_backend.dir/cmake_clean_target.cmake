file(REMOVE_RECURSE
  "libph_backend.a"
)
