file(REMOVE_RECURSE
  "CMakeFiles/ph_backend.dir/backend.cpp.o"
  "CMakeFiles/ph_backend.dir/backend.cpp.o.d"
  "libph_backend.a"
  "libph_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
