# Empty compiler generated dependencies file for ph_backend.
# This may be replaced when dependencies are built.
