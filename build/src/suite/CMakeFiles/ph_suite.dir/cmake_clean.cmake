file(REMOVE_RECURSE
  "CMakeFiles/ph_suite.dir/suite.cpp.o"
  "CMakeFiles/ph_suite.dir/suite.cpp.o.d"
  "libph_suite.a"
  "libph_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
