# Empty dependencies file for ph_suite.
# This may be replaced when dependencies are built.
