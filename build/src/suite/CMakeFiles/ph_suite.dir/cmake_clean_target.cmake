file(REMOVE_RECURSE
  "libph_suite.a"
)
