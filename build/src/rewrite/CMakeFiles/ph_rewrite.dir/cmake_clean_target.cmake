file(REMOVE_RECURSE
  "libph_rewrite.a"
)
