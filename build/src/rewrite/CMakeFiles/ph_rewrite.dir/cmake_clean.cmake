file(REMOVE_RECURSE
  "CMakeFiles/ph_rewrite.dir/rewrite.cpp.o"
  "CMakeFiles/ph_rewrite.dir/rewrite.cpp.o.d"
  "libph_rewrite.a"
  "libph_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
