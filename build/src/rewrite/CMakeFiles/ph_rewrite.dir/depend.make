# Empty dependencies file for ph_rewrite.
# This may be replaced when dependencies are built.
