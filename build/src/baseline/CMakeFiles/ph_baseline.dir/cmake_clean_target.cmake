file(REMOVE_RECURSE
  "libph_baseline.a"
)
