# Empty compiler generated dependencies file for ph_baseline.
# This may be replaced when dependencies are built.
