file(REMOVE_RECURSE
  "CMakeFiles/ph_baseline.dir/baseline.cpp.o"
  "CMakeFiles/ph_baseline.dir/baseline.cpp.o.d"
  "libph_baseline.a"
  "libph_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
