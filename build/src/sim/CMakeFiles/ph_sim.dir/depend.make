# Empty dependencies file for ph_sim.
# This may be replaced when dependencies are built.
