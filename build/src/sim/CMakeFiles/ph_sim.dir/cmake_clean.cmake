file(REMOVE_RECURSE
  "CMakeFiles/ph_sim.dir/interp.cpp.o"
  "CMakeFiles/ph_sim.dir/interp.cpp.o.d"
  "CMakeFiles/ph_sim.dir/testgen.cpp.o"
  "CMakeFiles/ph_sim.dir/testgen.cpp.o.d"
  "libph_sim.a"
  "libph_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
