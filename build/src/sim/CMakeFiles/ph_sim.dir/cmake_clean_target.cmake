file(REMOVE_RECURSE
  "libph_sim.a"
)
