# Empty compiler generated dependencies file for ph_ir.
# This may be replaced when dependencies are built.
