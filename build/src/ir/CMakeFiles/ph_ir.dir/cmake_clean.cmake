file(REMOVE_RECURSE
  "CMakeFiles/ph_ir.dir/builder.cpp.o"
  "CMakeFiles/ph_ir.dir/builder.cpp.o.d"
  "CMakeFiles/ph_ir.dir/ir.cpp.o"
  "CMakeFiles/ph_ir.dir/ir.cpp.o.d"
  "libph_ir.a"
  "libph_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
