file(REMOVE_RECURSE
  "libph_ir.a"
)
