file(REMOVE_RECURSE
  "libph_lang.a"
)
