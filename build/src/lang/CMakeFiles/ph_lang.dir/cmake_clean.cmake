file(REMOVE_RECURSE
  "CMakeFiles/ph_lang.dir/lexer.cpp.o"
  "CMakeFiles/ph_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/ph_lang.dir/parser.cpp.o"
  "CMakeFiles/ph_lang.dir/parser.cpp.o.d"
  "libph_lang.a"
  "libph_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
