# Empty dependencies file for ph_lang.
# This may be replaced when dependencies are built.
