# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rescue_wide_key "/root/repo/build/examples/rescue_wide_key")
set_tests_properties(example_rescue_wide_key PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hawk_compile "/root/repo/build/examples/hawk_compile" "/root/repo/examples/specs/ethernet.hawk" "tofino")
set_tests_properties(example_hawk_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mpls_loop "/root/repo/build/examples/mpls_loop")
set_tests_properties(example_mpls_loop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
