# Empty dependencies file for finance_parser.
# This may be replaced when dependencies are built.
