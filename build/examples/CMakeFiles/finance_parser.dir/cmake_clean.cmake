file(REMOVE_RECURSE
  "CMakeFiles/finance_parser.dir/finance_parser.cpp.o"
  "CMakeFiles/finance_parser.dir/finance_parser.cpp.o.d"
  "finance_parser"
  "finance_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
