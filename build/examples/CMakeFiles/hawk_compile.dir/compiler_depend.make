# Empty compiler generated dependencies file for hawk_compile.
# This may be replaced when dependencies are built.
