file(REMOVE_RECURSE
  "CMakeFiles/hawk_compile.dir/hawk_compile.cpp.o"
  "CMakeFiles/hawk_compile.dir/hawk_compile.cpp.o.d"
  "hawk_compile"
  "hawk_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawk_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
