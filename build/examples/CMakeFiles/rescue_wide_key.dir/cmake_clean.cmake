file(REMOVE_RECURSE
  "CMakeFiles/rescue_wide_key.dir/rescue_wide_key.cpp.o"
  "CMakeFiles/rescue_wide_key.dir/rescue_wide_key.cpp.o.d"
  "rescue_wide_key"
  "rescue_wide_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rescue_wide_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
