# Empty compiler generated dependencies file for rescue_wide_key.
# This may be replaced when dependencies are built.
