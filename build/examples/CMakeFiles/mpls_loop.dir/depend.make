# Empty dependencies file for mpls_loop.
# This may be replaced when dependencies are built.
