file(REMOVE_RECURSE
  "CMakeFiles/mpls_loop.dir/mpls_loop.cpp.o"
  "CMakeFiles/mpls_loop.dir/mpls_loop.cpp.o.d"
  "mpls_loop"
  "mpls_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpls_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
