
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_speedup_summary.cpp" "bench/CMakeFiles/bench_speedup_summary.dir/bench_speedup_summary.cpp.o" "gcc" "bench/CMakeFiles/bench_speedup_summary.dir/bench_speedup_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ph_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/ph_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ph_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ph_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/ph_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ph_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/postopt/CMakeFiles/ph_postopt.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/ph_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ph_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ph_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
