# Empty dependencies file for bench_speedup_summary.
# This may be replaced when dependencies are built.
