file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_rewrites.dir/bench_fig21_rewrites.cpp.o"
  "CMakeFiles/bench_fig21_rewrites.dir/bench_fig21_rewrites.cpp.o.d"
  "bench_fig21_rewrites"
  "bench_fig21_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
