file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tofino.dir/bench_table3_tofino.cpp.o"
  "CMakeFiles/bench_table3_tofino.dir/bench_table3_tofino.cpp.o.d"
  "bench_table3_tofino"
  "bench_table3_tofino.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tofino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
