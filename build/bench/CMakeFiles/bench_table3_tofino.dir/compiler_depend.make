# Empty compiler generated dependencies file for bench_table3_tofino.
# This may be replaced when dependencies are built.
