file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ipu.dir/bench_table3_ipu.cpp.o"
  "CMakeFiles/bench_table3_ipu.dir/bench_table3_ipu.cpp.o.d"
  "bench_table3_ipu"
  "bench_table3_ipu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ipu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
