file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ordering.dir/bench_fig5_ordering.cpp.o"
  "CMakeFiles/bench_fig5_ordering.dir/bench_fig5_ordering.cpp.o.d"
  "bench_fig5_ordering"
  "bench_fig5_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
