file(REMOVE_RECURSE
  "CMakeFiles/bench_random_subsets.dir/bench_random_subsets.cpp.o"
  "CMakeFiles/bench_random_subsets.dir/bench_random_subsets.cpp.o.d"
  "bench_random_subsets"
  "bench_random_subsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
