# Empty compiler generated dependencies file for bench_random_subsets.
# This may be replaced when dependencies are built.
