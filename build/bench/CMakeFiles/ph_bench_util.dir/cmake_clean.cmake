file(REMOVE_RECURSE
  "CMakeFiles/ph_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ph_bench_util.dir/bench_util.cpp.o.d"
  "libph_bench_util.a"
  "libph_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
