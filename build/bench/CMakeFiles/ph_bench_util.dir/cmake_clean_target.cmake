file(REMOVE_RECURSE
  "libph_bench_util.a"
)
