# Empty compiler generated dependencies file for ph_bench_util.
# This may be replaced when dependencies are built.
