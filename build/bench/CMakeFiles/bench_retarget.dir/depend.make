# Empty dependencies file for bench_retarget.
# This may be replaced when dependencies are built.
