// Quickstart: define a parser, compile it for Tofino, run packets through
// both the specification and the synthesized TCAM program.
//
//   $ cmake -B build -G Ninja && cmake --build build
//   $ ./build/examples/quickstart
#include <cstdio>

#include "ir/builder.h"
#include "sim/interp.h"
#include "synth/compiler.h"

using namespace parserhawk;

int main() {
  // 1. Describe the parser: Ethernet-style dispatch on a 16-bit type.
  SpecBuilder b("quickstart");
  b.field("etherType", 16).field("ipv4", 32).field("ipv6", 32);
  b.state("start")
      .extract("etherType")
      .select({b.whole("etherType")})
      .when_exact(0x0800, "parse_ipv4")
      .when_exact(0x86dd, "parse_ipv6")
      .otherwise("accept");
  b.state("parse_ipv4").extract("ipv4").otherwise("accept");
  b.state("parse_ipv6").extract("ipv6").otherwise("accept");
  ParserSpec spec = b.build().value();
  std::printf("Specification:\n%s\n", to_string(spec).c_str());

  // 2. Compile for the Tofino profile (single revisitable TCAM table).
  CompileResult result = compile(spec, tofino());
  if (!result.ok()) {
    std::printf("compilation failed: %s\n", result.reason.c_str());
    return 1;
  }
  std::printf("Compiled in %.2fs: %d TCAM entries, formally verified: %s\n",
              result.stats.seconds, result.usage.tcam_entries,
              result.stats.formally_verified ? "yes" : "bounded-only");
  std::printf("%s\n", to_string(result.program).c_str());

  // 3. Parse a packet with both the spec and the hardware program.
  BitVec packet;
  packet.append_u64(0x0800, 16);        // IPv4 EtherType
  packet.append_u64(0xC0A80001, 32);    // payload bits landing in `ipv4`
  ParseResult spec_out = run_spec(spec, packet);
  ParseResult impl_out = run_impl(result.program, packet);
  std::printf("spec: %s %s\n", to_string(spec_out.outcome).c_str(),
              to_string(spec_out.dict, spec.fields).c_str());
  std::printf("impl: %s %s\n", to_string(impl_out.outcome).c_str(),
              to_string(impl_out.dict, result.program.fields).c_str());
  std::printf("equivalent on this packet: %s\n",
              equivalent(spec_out, impl_out) ? "yes" : "NO");
  return equivalent(spec_out, impl_out) ? 0 : 1;
}
