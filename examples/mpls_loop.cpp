// MPLS label stacks on heterogeneous hardware (§3.1): the single-TCAM
// Tofino implements the label loop by revisiting one entry; the pipelined
// IPU cannot loop, so ParserHawk unrolls the stack to a bounded depth.
// This example compiles the same looping specification for both and shows
// the resulting structural difference plus packet-level agreement.
#include <cstdio>

#include "sim/interp.h"
#include "suite/suite.h"
#include "synth/compiler.h"

using namespace parserhawk;

namespace {

BitVec stack_packet(int depth) {
  BitVec pkt;
  pkt.append_u64(0x8847, 16);
  for (int i = 0; i < depth; ++i) {
    std::uint64_t word = (0x100u + static_cast<std::uint64_t>(i)) << 20;  // label
    if (i + 1 == depth) word |= 0x100;                                    // bottom of stack
    word |= 0x40;                                                         // ttl
    pkt.append_u64(word, 32);
  }
  pkt.append_u64(0xCAFEBABE, 32);
  return pkt;
}

}  // namespace

int main() {
  ParserSpec spec = suite::parse_mpls();
  std::printf("Looping MPLS spec:\n%s\n", to_string(spec).c_str());

  SynthOptions opts;
  opts.loop_unroll_depth = 4;

  CompileResult on_tofino = compile(spec, tofino(), opts);
  CompileResult on_ipu = compile(spec, ipu(), opts);
  if (!on_tofino.ok() || !on_ipu.ok()) {
    std::printf("compilation failed: %s %s\n", on_tofino.reason.c_str(), on_ipu.reason.c_str());
    return 1;
  }
  std::printf("Tofino: %d entries in 1 looping table\n", on_tofino.usage.tcam_entries);
  std::printf("IPU:    %d entries across %d stages (loop unrolled %dx)\n\n",
              on_ipu.usage.tcam_entries, on_ipu.usage.stages, opts.loop_unroll_depth);

  int payload = spec.field_index("payload");
  for (int depth = 1; depth <= 4; ++depth) {
    BitVec pkt = stack_packet(depth);
    ParseResult t = run_impl(on_tofino.program, pkt);
    ParseResult i = run_impl(on_ipu.program, pkt);
    std::printf("stack depth %d: tofino=%s ipu=%s payload parsed: %s/%s\n", depth,
                to_string(t.outcome).c_str(), to_string(i.outcome).c_str(),
                t.dict.count(payload) ? "yes" : "no", i.dict.count(payload) ? "yes" : "no");
  }
  std::printf("\n(Stacks deeper than the unroll depth reject on the IPU — the price of a "
              "loop-free pipeline.)\n");
  BitVec deep = stack_packet(6);
  std::printf("stack depth 6: tofino=%s ipu=%s\n",
              to_string(run_impl(on_tofino.program, deep).outcome).c_str(),
              to_string(run_impl(on_ipu.program, deep).outcome).c_str());
  return 0;
}
