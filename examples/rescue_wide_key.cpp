// The §1 story: developers "spend excessive time reshaping parser programs
// to pass compilation". This example takes a parser with a 48-bit
// transition key — rejected outright by the rule-per-entry commercial
// proxy ("Wide tran key") — and shows ParserHawk compiling it unmodified by
// synthesizing the key split, then proving the output equivalent.
#include <cstdio>

#include "baseline/baseline.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "synth/compiler.h"

using namespace parserhawk;

int main() {
  ParserSpec spec = suite::large_tran_key();
  std::printf("Input parser (48-bit transition key, device limit 32):\n%s\n",
              to_string(spec).c_str());

  CompileResult proxy = baseline::compile_tofino_proxy(spec, tofino());
  std::printf("Commercial proxy: %s (%s)\n", to_string(proxy.status).c_str(),
              proxy.reason.c_str());

  CompileResult hawk = compile(spec, tofino());
  if (!hawk.ok()) {
    std::printf("ParserHawk failed unexpectedly: %s\n", hawk.reason.c_str());
    return 1;
  }
  std::printf("ParserHawk: success — %d entries, %.2fs, no manual reshaping\n\n",
              hawk.usage.tcam_entries, hawk.stats.seconds);
  std::printf("Synthesized split:\n%s\n", to_string(hawk.program).c_str());

  DiffTestOptions dt;
  dt.samples = 400;
  dt.max_iterations = hawk.program.max_iterations;
  auto mismatch = differential_test(spec, hawk.program, dt);
  std::printf("Differential validation over 800 sampled packets: %s\n",
              mismatch ? "FAILED" : "all agree");
  return mismatch ? 1 : 0;
}
