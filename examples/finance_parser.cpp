// Finance-traffic origin classification (§2.2 of the paper): cloud
// providers colocating with exchanges (the CME / Google Cloud partnership)
// need the parser to identify a packet's origin — exchange feed, internal
// service, premium customer — before the packet-processing pipeline sees
// it. This example compiles the synthetic finance parser for both targets
// and classifies a stream of synthetic packets.
#include <cstdio>

#include "sim/interp.h"
#include "suite/suite.h"
#include "support/rng.h"
#include "synth/compiler.h"

using namespace parserhawk;

namespace {

BitVec make_packet(std::uint64_t origin_tag, Rng& rng) {
  BitVec pkt;
  pkt.append_u64(0x6558, 16);           // tunneled
  pkt.append_u64(rng() & 0xFFFFFF, 24);  // VNI
  pkt.append_u64(origin_tag, 16);
  pkt.append_u64(rng(), 32);  // per-class metadata/sequence bits
  return pkt;
}

}  // namespace

int main() {
  ParserSpec spec = suite::finance_origin();
  std::printf("Finance origin parser (%zu states)\n", spec.states.size());

  for (const HwProfile& hw : {tofino(), ipu()}) {
    CompileResult r = compile(spec, hw);
    if (!r.ok()) {
      std::printf("[%s] compilation failed: %s\n", hw.name.c_str(), r.reason.c_str());
      return 1;
    }
    std::printf("[%s] %d entries, %d stage(s), compiled in %.2fs\n", hw.name.c_str(),
                r.usage.tcam_entries, r.usage.stages, r.stats.seconds);

    // Classify a synthetic packet mix on the compiled parser.
    Rng rng(2026);
    int exchange = 0, internal = 0, premium = 0, other = 0;
    const int n = 1000;
    int exch_f = spec.field_index("exch_seq");
    int int_f = spec.field_index("internal_meta");
    int prem_f = spec.field_index("premium_meta");
    for (int i = 0; i < n; ++i) {
      std::uint64_t tag;
      switch (rng.below(4)) {
        case 0: tag = 0x1000 | (rng() & 0xFFF); break;  // exchange prefix
        case 1: tag = 0x2000 | (rng() & 0xFFF); break;  // internal prefix
        case 2: tag = rng.chance(0.5) ? 0x3001 : 0x3002; break;  // premium
        default: tag = 0x4000 | (rng() & 0xFFF); break;  // everything else
      }
      ParseResult out = run_impl(r.program, make_packet(tag, rng));
      if (out.dict.count(exch_f)) ++exchange;
      else if (out.dict.count(int_f)) ++internal;
      else if (out.dict.count(prem_f)) ++premium;
      else ++other;
    }
    std::printf("[%s] classified %d packets: %d exchange, %d internal, %d premium, %d other\n",
                hw.name.c_str(), n, exchange, internal, premium, other);
  }
  return 0;
}
