// hawk_compile: the end-to-end command-line compiler driver.
//
//   ./build/examples/hawk_compile examples/specs/ethernet.hawk tofino
//   ./build/examples/hawk_compile examples/specs/mpls.hawk ipu --threads 4
//   ./build/examples/hawk_compile examples/specs/ethernet.hawk tofino \
//       --trace-out trace.json --metrics-out metrics.json
//
// Reads a .hawk source file, runs the full pipeline (front-end -> analyzer
// -> CEGIS synthesis -> post-synthesis optimization -> verification) and
// prints the target configuration. `--threads N` (or PH_THREADS) enables
// the Opt7 parallel portfolio; the output program is identical at every
// thread count, only wall-clock changes.
//
// Observability (DESIGN.md §7, §11):
//   --trace-out PATH    span trace of the run; Chrome trace_event JSON
//                       (Perfetto-loadable), or JSONL when PATH ends in
//                       ".jsonl". Env fallback: PH_TRACE=PATH.
//   --metrics-out PATH  counters/histograms sidecar (Z3 queries, CEGIS
//                       behavior, pool health). Env fallback: PH_METRICS.
//   --report-out PATH   per-compile attribution report (obs/report.h):
//                       per-phase/state/variant/Z3-phase wall time, CEGIS
//                       rounds, cache hit/miss, winner provenance,
//                       deadline slack. Env fallback: PH_REPORT.
//   --explain           print the attribution report as a human-readable
//                       table (implies collecting a report).
//   --prom-out PATH     metrics in Prometheus text exposition format
//                       (obs/expo.h), with p50/p90/p99 summaries.
//   --flight-dump PATH  where automatic flight-recorder dumps go on
//                       deadline exhaustion / verification failure / fatal
//                       signal. Default: <spec>.flight.json. PH_FLIGHT_DUMP
//                       overrides.
//   --timeout SEC       wall-clock synthesis budget (0 = unlimited).
//   --verbose / --quiet log level (also PH_LOG=debug|info|warn|error).
//
// Verifier selection (DESIGN.md §13):
//   --verifier=z3|bisim|race  which equivalence checker the final verify
//                       phase runs: the monolithic terminal-pair Z3 query,
//                       the product-automaton bisimulation sweep, or both
//                       raced to completion (every race is also a live
//                       differential agreement check). The compiled output
//                       is identical for every choice. Env fallback:
//                       PH_VERIFIER.
// Every sidecar is written on every exit path — including spec parse
// errors, rejected compiles and timeouts — so post-mortems always have
// data.
//
// Synthesis cache (DESIGN.md §8):
//   --cache-dir PATH    content-addressed cache of per-state synthesis
//                       results under PATH; recompiles of unchanged states
//                       skip Z3 entirely and the output program is
//                       bit-identical either way. Env fallback:
//                       PH_CACHE_DIR.
//   --no-cache          ignore --cache-dir / PH_CACHE_DIR for this run.
//
// Batched differential testing (DESIGN.md §9):
//   --difftest-batch N    samples for the post-compile differential test
//                         and the CEGIS candidate pre-check. Env fallback:
//                         PH_DIFFTEST_BATCH.
//   --difftest-threads N  worker threads for the batched difftest; 0 =
//                         reuse the --threads pool. The verdict is
//                         identical at every value. Env fallback:
//                         PH_DIFFTEST_THREADS.
//
// Traffic replay (DESIGN.md §10):
//   --replay FILE.pcap    after compiling, replay every packet of the
//                         capture through both the spec interpreter and
//                         the synthesized program and difftest them;
//                         prints the verdict and spec rule coverage, exits
//                         non-zero on any disagreement.
//   --replay-save FILE    generate the spec's deterministic synthetic
//                         trace (sim/tracegen.h) and save it as a pcap —
//                         a ready-made input for --replay.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "lang/lang.h"
#include "obs/expo.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/batch.h"
#include "sim/pcap.h"
#include "sim/tracegen.h"
#include "synth/compiler.h"

using namespace parserhawk;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Write the trace/metrics/prometheus sidecars (if requested). Called on
/// EVERY exit path — usage errors, parse failures, timeouts, success — so a
/// requested sidecar is never missing or empty.
void write_telemetry(const std::string& trace_out, const std::string& metrics_out,
                     const std::string& prom_out) {
  if (!trace_out.empty()) {
    bool ok = ends_with(trace_out, ".jsonl") ? obs::Tracer::get().write_jsonl(trace_out)
                                             : obs::Tracer::get().write_chrome_trace(trace_out);
    if (ok)
      obs::log_info("trace written to %s", trace_out.c_str());
    else
      obs::log_error("cannot write trace to %s", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (obs::Metrics::get().write_json(metrics_out))
      obs::log_info("metrics written to %s", metrics_out.c_str());
    else
      obs::log_error("cannot write metrics to %s", metrics_out.c_str());
  }
  if (!prom_out.empty()) {
    if (obs::write_prometheus(prom_out))
      obs::log_info("prometheus exposition written to %s", prom_out.c_str());
    else
      obs::log_error("cannot write prometheus exposition to %s", prom_out.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  obs::log_level_from_env();

  std::vector<std::string> args;
  int num_threads = 1;
  int difftest_batch = -1;    // -1 = SynthOptions default
  int difftest_threads = -1;  // -1 = SynthOptions default (reuse Opt7 pool)
  std::string trace_out;
  std::string metrics_out;
  std::string report_out;
  std::string prom_out;
  std::string flight_dump;
  std::string cache_dir;
  std::string replay_path;
  std::string replay_save_path;
  double timeout_sec = 0;
  bool explain = false;
  bool no_cache = false;
  VerifierKind verifier = VerifierKind::Z3;
  auto set_verifier = [&](const std::string& v, const char* where) {
    if (!parse_verifier(v, verifier)) {
      obs::log_error("%s: unknown verifier '%s' (expected z3, bisim or race)", where, v.c_str());
      std::exit(2);
    }
  };
  if (const char* env = std::getenv("PH_VERIFIER")) set_verifier(env, "PH_VERIFIER");
  if (const char* env = std::getenv("PH_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) num_threads = v;
  }
  if (const char* env = std::getenv("PH_DIFFTEST_BATCH")) {
    int v = std::atoi(env);
    if (v > 0) difftest_batch = v;
  }
  if (const char* env = std::getenv("PH_DIFFTEST_THREADS")) {
    int v = std::atoi(env);
    if (v >= 0) difftest_threads = v;
  }
  if (const char* env = std::getenv("PH_TRACE")) trace_out = env;
  if (const char* env = std::getenv("PH_METRICS")) metrics_out = env;
  if (const char* env = std::getenv("PH_REPORT")) report_out = env;
  if (const char* env = std::getenv("PH_CACHE_DIR")) cache_dir = env;

  auto need_value = [&](const std::string& a, int i) -> const char* {
    if (i + 1 >= argc) {
      obs::log_error("%s requires a value", a.c_str());
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--threads" || a == "-j") {
      num_threads = std::atoi(need_value(a, i));
      ++i;
      if (num_threads < 1) num_threads = 1;
    } else if (a.rfind("--threads=", 0) == 0) {
      num_threads = std::atoi(a.c_str() + 10);
      if (num_threads < 1) num_threads = 1;
    } else if (a == "--trace-out") {
      trace_out = need_value(a, i);
      ++i;
    } else if (a.rfind("--trace-out=", 0) == 0) {
      trace_out = a.substr(12);
    } else if (a == "--metrics-out") {
      metrics_out = need_value(a, i);
      ++i;
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      metrics_out = a.substr(14);
    } else if (a == "--report-out") {
      report_out = need_value(a, i);
      ++i;
    } else if (a.rfind("--report-out=", 0) == 0) {
      report_out = a.substr(13);
    } else if (a == "--prom-out") {
      prom_out = need_value(a, i);
      ++i;
    } else if (a.rfind("--prom-out=", 0) == 0) {
      prom_out = a.substr(11);
    } else if (a == "--flight-dump") {
      flight_dump = need_value(a, i);
      ++i;
    } else if (a.rfind("--flight-dump=", 0) == 0) {
      flight_dump = a.substr(14);
    } else if (a == "--timeout") {
      timeout_sec = std::atof(need_value(a, i));
      ++i;
    } else if (a.rfind("--timeout=", 0) == 0) {
      timeout_sec = std::atof(a.c_str() + 10);
    } else if (a == "--explain") {
      explain = true;
    } else if (a == "--cache-dir") {
      cache_dir = need_value(a, i);
      ++i;
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      cache_dir = a.substr(12);
    } else if (a == "--difftest-batch") {
      difftest_batch = std::atoi(need_value(a, i));
      ++i;
    } else if (a.rfind("--difftest-batch=", 0) == 0) {
      difftest_batch = std::atoi(a.c_str() + 17);
    } else if (a == "--difftest-threads") {
      difftest_threads = std::atoi(need_value(a, i));
      ++i;
    } else if (a.rfind("--difftest-threads=", 0) == 0) {
      difftest_threads = std::atoi(a.c_str() + 19);
    } else if (a == "--replay") {
      replay_path = need_value(a, i);
      ++i;
    } else if (a.rfind("--replay=", 0) == 0) {
      replay_path = a.substr(9);
    } else if (a == "--replay-save") {
      replay_save_path = need_value(a, i);
      ++i;
    } else if (a.rfind("--replay-save=", 0) == 0) {
      replay_save_path = a.substr(14);
    } else if (a == "--verifier") {
      set_verifier(need_value(a, i), "--verifier");
      ++i;
    } else if (a.rfind("--verifier=", 0) == 0) {
      set_verifier(a.substr(11), "--verifier");
    } else if (a == "--no-cache") {
      no_cache = true;
    } else if (a == "--verbose" || a == "-v") {
      obs::set_log_level(obs::LogLevel::Debug);
    } else if (a == "--quiet" || a == "-q") {
      obs::set_log_level(obs::LogLevel::Warn);
    } else {
      args.push_back(std::move(a));
    }
  }
  // Enable telemetry BEFORE the spec is even opened: a parse error, a usage
  // mistake or a rejected spec must still flush non-empty sidecars (the
  // trace then contains at least the hawk_compile span).
  if (!trace_out.empty()) obs::Tracer::get().enable();
  if (!metrics_out.empty() || !prom_out.empty()) obs::Metrics::get().enable();
  obs::set_thread_name("main");
  obs::Span run_span("hawk_compile");
  auto finish = [&](int code) -> int {
    run_span.end();
    write_telemetry(trace_out, metrics_out, prom_out);
    return code;
  };

  if (args.empty() || args.size() > 2) {
    std::fprintf(stderr,
                 "usage: %s <spec.hawk> [tofino|ipu] [--threads N] [--timeout SEC]\n"
                 "       [--trace-out PATH] [--metrics-out PATH] [--report-out PATH] [--explain]\n"
                 "       [--prom-out PATH] [--flight-dump PATH] [--cache-dir PATH] [--no-cache]\n"
                 "       [--difftest-batch N] [--difftest-threads N] [--verifier z3|bisim|race]\n"
                 "       [--replay FILE.pcap] [--replay-save FILE.pcap] [--verbose|--quiet]\n",
                 argv[0]);
    return finish(2);
  }

  // Automatic flight-recorder dumps (deadline blown, verification failure,
  // fatal signal) default to sitting next to the spec.
  obs::flight::set_auto_dump_path(!flight_dump.empty() ? flight_dump
                                                       : args[0] + ".flight.json");
  obs::flight::install_fatal_signal_dump();

  std::ifstream in(args[0]);
  if (!in) {
    obs::log_error("cannot open %s", args[0].c_str());
    return finish(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto spec = lang::parse_source(buf.str());
  if (!spec) {
    obs::log_error("%s", spec.error().to_string().c_str());
    return finish(1);
  }
  std::string target = args.size() == 2 ? args[1] : "tofino";
  HwProfile hw = target == "ipu" ? ipu() : tofino();

  obs::log_info("compiling '%s' (%zu states) for %s with %d thread(s)", spec->name.c_str(),
                spec->states.size(), hw.name.c_str(), num_threads);
  obs::log_debug("trace-out=%s metrics-out=%s", trace_out.empty() ? "(off)" : trace_out.c_str(),
                 metrics_out.empty() ? "(off)" : metrics_out.c_str());
  SynthOptions opts;
  opts.num_threads = num_threads;
  opts.timeout_sec = timeout_sec;
  opts.verifier = verifier;
  if (difftest_batch > 0) opts.difftest_samples = difftest_batch;
  if (difftest_threads >= 0) opts.difftest_threads = difftest_threads;
  if (!no_cache && !cache_dir.empty()) {
    opts.cache_dir = cache_dir;
    obs::log_info("synthesis cache at %s", cache_dir.c_str());
  }
  obs::ReportBuilder report_builder;
  if (!report_out.empty() || explain) opts.report = &report_builder;
  CompileResult result = compile(*spec, hw, opts);
  if (opts.report != nullptr) {
    obs::CompileReport rep = report_builder.report();
    if (!report_out.empty()) {
      if (rep.write_json(report_out))
        obs::log_info("attribution report written to %s", report_out.c_str());
      else
        obs::log_error("cannot write attribution report to %s", report_out.c_str());
    }
    if (explain) std::printf("%s", rep.explain().c_str());
  }
  if (!result.ok()) {
    obs::log_error("FAILED: %s (%s)", to_string(result.status).c_str(), result.reason.c_str());
    return finish(1);
  }
  obs::log_info("OK in %.2fs: %d entries, %d stage(s), verified: %s (%s)", result.stats.seconds,
                result.usage.tcam_entries, result.usage.stages,
                result.stats.formally_verified ? "formally" : "bounded+differential",
                result.verifier.c_str());
  if (result.reach_valid)
    obs::log_info("bisim reachability: %d/%d states, %d/%d rules, %d/%d TCAM rows%s",
                  result.reach.states_reachable(), result.reach.states_total(),
                  result.reach.rules_reachable(), result.reach.rules_total(),
                  result.reach.rows_reachable(), result.reach.rows_total(),
                  result.reach.exact ? " (exact)" : "");
  std::printf("%s\n", backend::emit(result.program, hw).c_str());

  if (!replay_save_path.empty()) {
    TraceGenReport trace = generate_trace(*spec);
    if (!pcap::write_file(replay_save_path, trace.packets)) {
      obs::log_error("cannot write trace pcap to %s", replay_save_path.c_str());
      return finish(1);
    }
    obs::log_info("synthetic trace saved: %zu packets to %s (%zu rules unreachable)",
                  trace.packets.size(), replay_save_path.c_str(), trace.missed_rules.size());
  }

  if (!replay_path.empty()) {
    auto capture = pcap::read_file(replay_path);
    if (!capture.ok()) {
      obs::log_error("%s", capture.error().to_string().c_str());
      return finish(1);
    }
    if (capture->truncated_tail)
      obs::log_warn("%s ends mid-record; the truncated tail was dropped", replay_path.c_str());
    BatchOptions bo;
    bo.threads = num_threads;
    bo.max_iterations = result.program.max_iterations;
    // Zero-copy: the batch runs over views into the capture's byte buffer
    // (DESIGN.md §12); the PcapFile outlives the call.
    BatchResult replay = run_batch(*spec, result.program, capture->to_refs(), bo);
    obs::log_info("replayed %lld packets: %lld agree, rule coverage %d/%d, row coverage %d/%d",
                  static_cast<long long>(replay.evaluated), static_cast<long long>(replay.agree),
                  replay.coverage.rules_hit(), replay.coverage.rules_total(),
                  replay.coverage.rows_hit(), replay.coverage.rows_total());
    if (!replay.coverage.all_rules_covered())
      obs::log_warn("capture leaves rules dark: %s",
                    replay.coverage.uncovered_rules(*spec).c_str());
    if (replay.mismatch.has_value()) {
      obs::log_error("REPLAY MISMATCH at packet %lld: spec and implementation disagree",
                     static_cast<long long>(replay.first_mismatch));
      return finish(1);
    }
  }
  return finish(0);
}
