// hawk_compile: the end-to-end command-line compiler driver.
//
//   ./build/examples/hawk_compile examples/specs/ethernet.hawk tofino
//   ./build/examples/hawk_compile examples/specs/mpls.hawk ipu --threads 4
//
// Reads a .hawk source file, runs the full pipeline (front-end -> analyzer
// -> CEGIS synthesis -> post-synthesis optimization -> verification) and
// prints the target configuration. `--threads N` (or PH_THREADS) enables
// the Opt7 parallel portfolio; the output program is identical at every
// thread count, only wall-clock changes.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "lang/lang.h"
#include "synth/compiler.h"

using namespace parserhawk;

int main(int argc, char** argv) {
  std::vector<std::string> args;
  int num_threads = 1;
  if (const char* env = std::getenv("PH_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) num_threads = v;
  }
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--threads" || a == "-j") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a count\n", a.c_str());
        return 2;
      }
      num_threads = std::atoi(argv[++i]);
      if (num_threads < 1) num_threads = 1;
    } else if (a.rfind("--threads=", 0) == 0) {
      num_threads = std::atoi(a.c_str() + 10);
      if (num_threads < 1) num_threads = 1;
    } else {
      args.push_back(std::move(a));
    }
  }
  if (args.empty() || args.size() > 2) {
    std::fprintf(stderr, "usage: %s <spec.hawk> [tofino|ipu] [--threads N]\n", argv[0]);
    return 2;
  }
  std::ifstream in(args[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args[0].c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto spec = lang::parse_source(buf.str());
  if (!spec) {
    std::fprintf(stderr, "%s\n", spec.error().to_string().c_str());
    return 1;
  }
  std::string target = args.size() == 2 ? args[1] : "tofino";
  HwProfile hw = target == "ipu" ? ipu() : tofino();

  std::printf("Compiling '%s' (%zu states) for %s with %d thread(s)...\n", spec->name.c_str(),
              spec->states.size(), hw.name.c_str(), num_threads);
  SynthOptions opts;
  opts.num_threads = num_threads;
  CompileResult result = compile(*spec, hw, opts);
  if (!result.ok()) {
    std::printf("FAILED: %s (%s)\n", to_string(result.status).c_str(), result.reason.c_str());
    return 1;
  }
  std::printf("OK in %.2fs: %d entries, %d stage(s), verified: %s\n\n", result.stats.seconds,
              result.usage.tcam_entries, result.usage.stages,
              result.stats.formally_verified ? "formally" : "bounded+differential");
  std::printf("%s\n", backend::emit(result.program, hw).c_str());
  return 0;
}
