// hawk_compile: the end-to-end command-line compiler driver.
//
//   ./build/examples/hawk_compile examples/specs/ethernet.hawk tofino
//   ./build/examples/hawk_compile examples/specs/mpls.hawk ipu
//
// Reads a .hawk source file, runs the full pipeline (front-end -> analyzer
// -> CEGIS synthesis -> post-synthesis optimization -> verification) and
// prints the target configuration.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "backend/backend.h"
#include "lang/lang.h"
#include "synth/compiler.h"

using namespace parserhawk;

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <spec.hawk> [tofino|ipu]\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto spec = lang::parse_source(buf.str());
  if (!spec) {
    std::fprintf(stderr, "%s\n", spec.error().to_string().c_str());
    return 1;
  }
  std::string target = argc == 3 ? argv[2] : "tofino";
  HwProfile hw = target == "ipu" ? ipu() : tofino();

  std::printf("Compiling '%s' (%zu states) for %s...\n", spec->name.c_str(),
              spec->states.size(), hw.name.c_str());
  CompileResult result = compile(*spec, hw);
  if (!result.ok()) {
    std::printf("FAILED: %s (%s)\n", to_string(result.status).c_str(), result.reason.c_str());
    return 1;
  }
  std::printf("OK in %.2fs: %d entries, %d stage(s), verified: %s\n\n", result.stats.seconds,
              result.usage.tcam_entries, result.usage.stages,
              result.stats.formally_verified ? "formally" : "bounded+differential");
  std::printf("%s\n", backend::emit(result.program, hw).c_str());
  return 0;
}
